package main

import (
	"os"
	"strings"
	"sync"
	"testing"

	"amp/internal/core"
)

func TestLinearizableQueueHistory(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-model", "queue", "-v", "../../testdata/history.json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LINEARIZABLE: 5 operations") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "enq") {
		t.Fatalf("witness not printed:\n%s", out.String())
	}
}

func TestNonLinearizableHistory(t *testing.T) {
	history := `[
	  {"thread":0,"action":"enq","input":1,"call":1,"return":2},
	  {"thread":1,"action":"enq","input":2,"call":3,"return":4},
	  {"thread":0,"action":"deq","output":2,"call":5,"return":6},
	  {"thread":1,"action":"deq","output":1,"call":7,"return":8}
	]`
	h, err := decodeHistory(strings.NewReader(history))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 4 {
		t.Fatalf("decoded %d ops, want 4", len(h))
	}
	var out strings.Builder
	f := writeTemp(t, history)
	if err := run([]string{"-model", "queue", f}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NOT LINEARIZABLE") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestStackModelSelection(t *testing.T) {
	history := `[
	  {"thread":0,"action":"push","input":1,"call":1,"return":2},
	  {"thread":0,"action":"push","input":2,"call":3,"return":4},
	  {"thread":0,"action":"pop","output":2,"call":5,"return":6}
	]`
	var out strings.Builder
	if err := run([]string{"-model", "stack", writeTemp(t, history)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LINEARIZABLE") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestCounterModelLiftsInts(t *testing.T) {
	history := `[
	  {"thread":0,"action":"getAndIncrement","output":0,"call":1,"return":2},
	  {"thread":1,"action":"getAndIncrement","output":1,"call":3,"return":4}
	]`
	var out strings.Builder
	if err := run([]string{"-model", "counter", writeTemp(t, history)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LINEARIZABLE") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestBadInputs(t *testing.T) {
	tests := []struct {
		name string
		args []string
		body string
	}{
		{"unknown model", []string{"-model", "nope"}, `[]`},
		{"bad json", nil, `{`},
		{"return before call", nil, `[{"thread":0,"action":"enq","input":1,"call":5,"return":2}]`},
		{"bad output", nil, `[{"thread":0,"action":"deq","output":"weird","call":1,"return":2}]`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			args := append(tt.args, writeTemp(t, tt.body))
			if err := run(args, &out); err == nil {
				t.Fatalf("expected error, got output:\n%s", out.String())
			}
		})
	}
}

func TestUndecidedOnTinyBudget(t *testing.T) {
	// A big all-concurrent history with budget 1 must come back UNDECIDED.
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i < 12; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"thread":0,"action":"enq","input":1,"call":1,"return":100}`)
	}
	sb.WriteString("]")
	var out strings.Builder
	if err := run([]string{"-model", "queue", "-budget", "1", writeTemp(t, sb.String())}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "UNDECIDED") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func writeTemp(t *testing.T, body string) string {
	t.Helper()
	f := t.TempDir() + "/history.json"
	if err := writeFile(f, body); err != nil {
		t.Fatal(err)
	}
	return f
}

func writeFile(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

// TestRecorderRoundtrip drives a concurrent run, exports the history with
// core.History.WriteJSON, and feeds it back through the CLI.
func TestRecorderRoundtrip(t *testing.T) {
	rec := core.NewRecorder()
	var (
		mu sync.Mutex
		q  []int
	)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if i%2 == 0 {
					v := int(me)*10 + i
					p := rec.Call(me, "enq", v)
					mu.Lock()
					q = append(q, v)
					mu.Unlock()
					p.Done(nil)
				} else {
					p := rec.Call(me, "deq", nil)
					mu.Lock()
					var out any = core.Empty
					if len(q) > 0 {
						out = q[0]
						q = q[1:]
					}
					mu.Unlock()
					p.Done(out)
				}
			}
		}(core.ThreadID(w))
	}
	wg.Wait()

	path := t.TempDir() + "/recorded.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.History().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-model", "queue", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LINEARIZABLE: 12 operations") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}
