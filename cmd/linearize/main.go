// Command linearize checks a recorded concurrent history against a
// sequential model (Chapter 3): it reads a JSON history from a file or
// stdin and reports whether the history is linearizable, printing a witness
// order when it is.
//
// History format (one JSON array):
//
//	[
//	  {"thread":0,"action":"enq","input":1,"call":1,"return":4},
//	  {"thread":1,"action":"deq","output":1,"call":2,"return":6}
//	]
//
// "output" may be the string "empty" to denote an empty-container response.
// Inputs and outputs are integers otherwise.
//
// Usage:
//
//	linearize -model queue history.json
//	cat history.json | linearize -model stack
//
// Models: queue, stack, set, counter, register, pqueue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"amp/internal/core"
)

// jsonOp mirrors core.Operation for decoding.
type jsonOp struct {
	Thread int             `json:"thread"`
	Action string          `json:"action"`
	Input  *int            `json:"input"`
	Output json.RawMessage `json:"output"`
	Call   int64           `json:"call"`
	Return int64           `json:"return"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "linearize:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("linearize", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "queue", "sequential model: queue, stack, set, counter, register, pqueue")
		budget    = fs.Int("budget", core.DefaultMaxSteps, "search step budget")
		verbose   = fs.Bool("v", false, "print the witness linearization")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := modelByName(*modelName)
	if err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	history, err := decodeHistory(in)
	if err != nil {
		return fmt.Errorf("decode history: %w", err)
	}
	if *modelName == "counter" {
		// The counter model works in int64; lift decoded ints.
		for i := range history {
			if v, ok := history[i].Input.(int); ok {
				history[i].Input = int64(v)
			}
			if v, ok := history[i].Output.(int); ok {
				history[i].Output = int64(v)
			}
		}
	}

	res := core.CheckBudget(model, history, *budget)
	switch {
	case res.Exhausted:
		fmt.Fprintf(out, "UNDECIDED: search budget (%d steps) exhausted on %d operations\n",
			*budget, len(history))
		return nil
	case res.Linearizable:
		fmt.Fprintf(out, "LINEARIZABLE: %d operations\n", len(history))
		if *verbose {
			for i, op := range res.Witness {
				fmt.Fprintf(out, "  %3d. %v\n", i+1, op)
			}
		}
		return nil
	default:
		fmt.Fprintf(out, "NOT LINEARIZABLE: %d operations admit no legal sequential order\n",
			len(history))
		return nil
	}
}

func modelByName(name string) (core.Model, error) {
	switch name {
	case "queue":
		return core.QueueModel(), nil
	case "stack":
		return core.StackModel(), nil
	case "set":
		return core.SetModel(), nil
	case "counter":
		return core.CounterModel(), nil
	case "register":
		return core.RegisterModel(0), nil
	case "pqueue":
		return core.PQueueModel(), nil
	default:
		return core.Model{}, fmt.Errorf("unknown model %q", name)
	}
}

func decodeHistory(r io.Reader) (core.History, error) {
	var ops []jsonOp
	if err := json.NewDecoder(r).Decode(&ops); err != nil {
		return nil, err
	}
	h := make(core.History, 0, len(ops))
	for i, op := range ops {
		if op.Return <= op.Call {
			return nil, fmt.Errorf("op %d: return %d not after call %d", i, op.Return, op.Call)
		}
		rec := core.Operation{
			Thread: core.ThreadID(op.Thread),
			Action: op.Action,
			Call:   op.Call,
			Return: op.Return,
		}
		if op.Input != nil {
			rec.Input = *op.Input
		}
		if len(op.Output) > 0 {
			var s string
			if err := json.Unmarshal(op.Output, &s); err == nil {
				if s != "empty" {
					return nil, fmt.Errorf("op %d: unknown output %q", i, s)
				}
				rec.Output = core.Empty
			} else {
				var v int
				if err := json.Unmarshal(op.Output, &v); err != nil {
					return nil, fmt.Errorf("op %d: output must be an int, \"empty\", or absent", i)
				}
				rec.Output = v
			}
		}
		h = append(h, rec)
	}
	return h, nil
}
