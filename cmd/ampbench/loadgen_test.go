package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"amp/internal/server"
)

// TestLoadMode drives an in-process ampserved with the load generator.
func TestLoadMode(t *testing.T) {
	srv, err := server.New(server.Options{Shards: 2})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var sb strings.Builder
	err = run([]string{"-serve-addr", srv.Addr().String(), "-clients", "4", "-ops", "120"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"480 ops", "ops/sec", "p50=", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The server must have seen every measured family.
	counts := map[string]int64{}
	for _, s := range srv.Stats() {
		counts[s.Name] = s.Count
	}
	for _, op := range []string{"set.add", "queue.enq", "stack.push", "counter.inc", "pqueue.add"} {
		if counts[op] == 0 {
			t.Errorf("server stats: op %s never executed (%v)", op, counts)
		}
	}
}

// TestLoadModePipelined drives the server with pipeline depth 8 and
// checks that every op still executes exactly once.
func TestLoadModePipelined(t *testing.T) {
	srv, err := server.New(server.Options{Shards: 2})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var sb strings.Builder
	err = run([]string{"-serve-addr", srv.Addr().String(),
		"-clients", "4", "-ops", "110", "-depth", "8"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"depth=8", "440 ops", "ops/sec"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// 4 clients × 110 ops × the 11-command mix = 40 full cycles; every
	// measured family must have run its share.
	counts := map[string]int64{}
	for _, s := range srv.Stats() {
		counts[s.Name] = s.Count
	}
	for _, op := range []string{"set.add", "queue.enq", "stack.push", "counter.inc", "pqueue.add"} {
		if counts[op] != 40 {
			t.Errorf("server stats: op %s count = %d, want 40", op, counts[op])
		}
	}
}

// TestLoadModeMap drives the server with the Zipf string-key workload and
// checks that only the map family executed.
func TestLoadModeMap(t *testing.T) {
	srv, err := server.New(server.Options{Shards: 2})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var sb strings.Builder
	err = run([]string{"-serve-addr", srv.Addr().String(),
		"-clients", "4", "-ops", "150", "-depth", "4", "-mode", "map", "-keys", "64"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"mode=map", "keys=64", "600 ops", "ops/sec"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	counts := map[string]int64{}
	for _, s := range srv.Stats() {
		counts[s.Name] = s.Count
	}
	// HGETs take the read bypass (default txn=tl2 keyspace), so they
	// count under read.bypass rather than the shard-applied map.get.
	if total := counts["map.set"] + counts["map.get"] + counts["map.del"] + counts["read.bypass"]; total != 600 {
		t.Errorf("map family executed %d ops, want 600 (%v)", total, counts)
	}
	if counts["map.set"] == 0 || counts["read.bypass"] == 0 || counts["map.del"] == 0 {
		t.Errorf("map verb mix incomplete: %v", counts)
	}
	for _, op := range []string{"set.add", "queue.enq", "stack.push"} {
		if counts[op] != 0 {
			t.Errorf("map mode executed %s %d times, want 0", op, counts[op])
		}
	}
}

// TestLoadModeReadMix drives the -mix read-ratio workload against a
// bypass-capable set backend and checks both the ratio accounting and
// that the reads actually took the bypass (zero mailbox reads).
func TestLoadModeReadMix(t *testing.T) {
	srv, err := server.New(server.Options{Shards: 2, Set: "skip-epoch"})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var sb strings.Builder
	err = run([]string{"-serve-addr", srv.Addr().String(),
		"-clients", "2", "-ops", "400", "-depth", "4", "-mix", "90:10", "-keys", "64"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"mix=90:10", "800 ops", "p99.9="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	counts := map[string]int64{}
	for _, s := range srv.Stats() {
		counts[s.Name] = s.Count
	}
	reads, writes := counts["read.bypass"], counts["set.add"]+counts["set.remove"]
	if reads+writes != 800 {
		t.Errorf("reads(%d)+writes(%d) = %d, want 800 (%v)", reads, writes, reads+writes, counts)
	}
	if counts["read.mailbox"] != 0 || counts["set.contains"] != 0 {
		t.Errorf("GETs rode the mailbox on a bypass-capable backend: %v", counts)
	}
	// 90% reads with binomial noise over 800 draws: stay in a wide band.
	if reads < 640 || reads > 790 {
		t.Errorf("read.bypass = %d of 800, want ≈720 for a 90:10 mix", reads)
	}
}

func TestLoadModeRejectsBadMix(t *testing.T) {
	var sb strings.Builder
	for _, mix := range []string{"90", "a:b", "-1:10", "0:0", "90:10:0"} {
		if err := runLoad(loadConfig{addr: "x", clients: 1, ops: 1, mix: mix, keys: 8}, &sb); err == nil {
			t.Errorf("mix=%q should fail", mix)
		}
	}
	if err := runLoad(loadConfig{addr: "x", clients: 1, ops: 1,
		mode: "txn", keys: 8, txnSize: 2, mix: "90:10"}, &sb); err == nil {
		t.Error("mix in txn mode should fail")
	}
	if err := runLoad(loadConfig{addr: "x", clients: 1, ops: 1, mix: "90:10", keys: 0}, &sb); err == nil {
		t.Error("mix with keys=0 should fail")
	}
}

// TestLoadModeTxn drives the MULTI/EXEC transfer workload and checks the
// balance-sum invariant plus the commit accounting on the server side.
func TestLoadModeTxn(t *testing.T) {
	srv, err := server.New(server.Options{Shards: 4})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var sb strings.Builder
	err = run([]string{"-serve-addr", srv.Addr().String(),
		"-clients", "4", "-ops", "50", "-depth", "2", "-mode", "txn",
		"-keys", "32", "-txn-size", "3"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"mode=txn", "keys=32 txn-size=3", "200 txns",
		"txstats: engine=tl2", "invariant: sum(balances)=0 over 32 accounts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// 4 clients × 50 transactions, one STM commit each.
	var commits int64
	for _, s := range srv.Stats() {
		if s.Name == "txn.commit" {
			commits = s.Count
		}
	}
	if commits < 200 {
		t.Errorf("txn.commit = %d, want >= 200", commits)
	}

	// A second run over a *narrower* account range must still pass: the
	// first run's transfers leave individual accounts nonzero (only its
	// full 32-account sum is balanced), so the invariant has to compare
	// against a pre-run baseline, not absolute zero.
	sb.Reset()
	err = run([]string{"-serve-addr", srv.Addr().String(),
		"-clients", "2", "-ops", "25", "-mode", "txn",
		"-keys", "8", "-txn-size", "2"}, &sb)
	if err != nil {
		t.Fatalf("second run: %v\noutput:\n%s", err, sb.String())
	}
	if out := sb.String(); !strings.Contains(out, "delta 0)") {
		t.Errorf("second run output missing zero delta:\n%s", out)
	}
}

func TestLoadModeTxnRejectsBadSize(t *testing.T) {
	var sb strings.Builder
	for _, size := range []int{0, 1, server.MaxTxnOps + 1} {
		if err := runLoad(loadConfig{addr: "x", clients: 1, ops: 1,
			mode: "txn", keys: 8, txnSize: size}, &sb); err == nil {
			t.Errorf("txn-size=%d should fail", size)
		}
	}
	if err := runLoad(loadConfig{addr: "x", clients: 1, ops: 1,
		mode: "txn", keys: 0, txnSize: 2}, &sb); err == nil {
		t.Error("txn mode with keys=0 should fail")
	}
}

// TestLoadModeSnapshot runs the snapshot schedule against an in-process
// server: all five segments report, the SAVE and RESHARD control verbs
// succeed mid-load, and the closing STATS rows show the snapshot taken
// and the doubled shard count.
func TestLoadModeSnapshot(t *testing.T) {
	srv, err := server.New(server.Options{Shards: 2, MaxShards: 4, SnapshotDir: t.TempDir()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var sb strings.Builder
	err = run([]string{"-serve-addr", srv.Addr().String(), "-mode", "snapshot",
		"-clients", "4", "-ops", "400", "-depth", "4", "-keys", "256"}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"before", "during-save", "after-save", "during-reshard", "after-reshard",
		"[SAVE → OK in", "[RESHARD 4 → OK in",
		"server snap saves=1", "server shards 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadModeRejectsBadMode(t *testing.T) {
	var sb strings.Builder
	if err := runLoad(loadConfig{addr: "x", clients: 1, ops: 1, mode: "nope"}, &sb); err == nil {
		t.Fatal("mode=nope should fail")
	}
	if err := runLoad(loadConfig{addr: "x", clients: 1, ops: 1, mode: "map", keys: 0}, &sb); err == nil {
		t.Fatal("map mode with keys=0 should fail")
	}
}

func TestLoadModeBadAddr(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-serve-addr", "127.0.0.1:1", "-clients", "1", "-ops", "1"}, &sb); err == nil {
		t.Fatal("load against a dead address should fail")
	}
}

func TestLoadModeRejectsBadCounts(t *testing.T) {
	var sb strings.Builder
	if err := runLoad(loadConfig{addr: "x", clients: 0, ops: 5}, &sb); err == nil {
		t.Fatal("clients=0 should fail")
	}
}
