// Snapshot mode: ampbench -serve-addr ... -mode snapshot measures what
// durability and elasticity cost the data plane. A steady mixed
// GET/SET/DEL load runs through five segments — a quiet baseline, one
// with a SAVE cut landing mid-segment, a recovery segment, one with a
// RESHARD doubling landing mid-segment, and a final segment on the
// widened topology — and reports each segment's ops/sec and p50/p99
// plus the control verb's own round-trip time. The before/during/after
// deltas are the stall evidence EXPERIMENTS.md E21 records; the run
// ends with the server's snap and shards STATS rows.
package main

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// snapSegment is one leg of the schedule; ctl is a control verb
// round-tripped on its own connection once the segment is underway.
type snapSegment struct {
	name string
	ctl  string
}

// snapClient is one persistent connection reused across every segment:
// resharding must be invisible to established connections, so the load
// never reconnects mid-run.
type snapClient struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	rng  *rand.Rand
}

// runSnapshot executes the segment schedule and prints per-segment
// rates, control-verb latencies, and the server's snapshot STATS rows.
func runSnapshot(cfg loadConfig, out io.Writer) error {
	depth := cfg.depth
	if depth < 1 {
		depth = 1
	}

	shards, err := statsShards(cfg)
	if err != nil {
		return err
	}
	segments := []snapSegment{
		{name: "before"},
		{name: "during-save", ctl: "SAVE"},
		{name: "after-save"},
		{name: "during-reshard", ctl: fmt.Sprintf("RESHARD %d", 2*shards)},
		{name: "after-reshard"},
	}

	clients := make([]*snapClient, cfg.clients)
	for id := range clients {
		conn, err := net.Dial("tcp", cfg.addr)
		if err != nil {
			return fmt.Errorf("snapshot: dial client %d: %w", id, err)
		}
		defer conn.Close()
		clients[id] = &snapClient{
			conn: conn,
			r:    bufio.NewReader(conn),
			w:    bufio.NewWriter(conn),
			rng:  rand.New(rand.NewSource(int64(id)*60013 + 11)),
		}
	}
	ctlConn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("snapshot: dial control: %w", err)
	}
	defer ctlConn.Close()
	ctlR := bufio.NewReader(ctlConn)

	fmt.Fprintf(out, "ampbench snapshot: addr=%s clients=%d ops/client/segment=%d depth=%d keys=%d shards=%d→%d\n",
		cfg.addr, cfg.clients, cfg.ops, depth, cfg.keys, shards, 2*shards)

	// The control verb fires a third of the way into its segment, timed
	// off the previous segment's wall clock so it lands while the load
	// is in full swing.
	var lastElapsed time.Duration
	for _, seg := range segments {
		results := make([]clientResult, len(clients))
		start := time.Now()
		var wg sync.WaitGroup
		for id, c := range clients {
			wg.Add(1)
			go func(id int, c *snapClient) {
				defer wg.Done()
				results[id] = runSnapClient(cfg, c, depth, id)
			}(id, c)
		}
		var ctlDur time.Duration
		if seg.ctl != "" {
			time.Sleep(lastElapsed / 3)
			ctlStart := time.Now()
			if _, err := fmt.Fprintf(ctlConn, "%s\n", seg.ctl); err != nil {
				return fmt.Errorf("snapshot: %s: %w", seg.ctl, err)
			}
			ctlConn.SetReadDeadline(time.Now().Add(cfg.timeout))
			line, err := ctlR.ReadString('\n')
			if err != nil {
				return fmt.Errorf("snapshot: %s: %w", seg.ctl, err)
			}
			if line = strings.TrimSpace(line); line != "OK" {
				return fmt.Errorf("snapshot: %s → %s", seg.ctl, line)
			}
			ctlDur = time.Since(ctlStart)
		}
		wg.Wait()
		elapsed := time.Since(start)
		lastElapsed = elapsed

		var lat []time.Duration
		for id, r := range results {
			if r.err != nil {
				return fmt.Errorf("snapshot: segment %s client %d: %w", seg.name, id, r.err)
			}
			lat = append(lat, r.lat...)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Fprintf(out, "  %-15s %9.0f ops/s  p50=%-10v p99=%v",
			seg.name, float64(len(lat))/elapsed.Seconds(), quantile(lat, 0.50), quantile(lat, 0.99))
		if seg.ctl != "" {
			fmt.Fprintf(out, "  [%s → OK in %v]", seg.ctl, ctlDur)
		}
		fmt.Fprintln(out)
	}
	return printSnapStats(cfg, out)
}

// runSnapClient replays cfg.ops mixed set-family commands over the
// client's persistent connection, pipelined at depth.
func runSnapClient(cfg loadConfig, c *snapClient, depth, id int) clientResult {
	lat := make([]time.Duration, 0, cfg.ops)
	window := make([]string, 0, depth)
	for sent := 0; sent < cfg.ops; sent += len(window) {
		window = window[:0]
		for i := sent; i < cfg.ops && len(window) < depth; i++ {
			window = append(window, snapCommand(c.rng, cfg.keys))
		}
		begin := time.Now()
		for _, cmd := range window {
			c.w.WriteString(cmd)
			c.w.WriteByte('\n')
		}
		if err := c.w.Flush(); err != nil {
			return clientResult{err: fmt.Errorf("write window at %d: %w", sent, err)}
		}
		c.conn.SetReadDeadline(time.Now().Add(cfg.timeout))
		for _, cmd := range window {
			line, err := c.r.ReadString('\n')
			if err != nil {
				return clientResult{err: fmt.Errorf("read reply to %q: %w", cmd, err)}
			}
			if strings.HasPrefix(line, "ERR") {
				return clientResult{err: fmt.Errorf("%q → %s", cmd, strings.TrimSpace(line))}
			}
		}
		d := time.Since(begin)
		for range window {
			lat = append(lat, d)
		}
	}
	return clientResult{lat: lat}
}

// snapCommand draws one GET/SET/DEL over the integer key space, reads
// at 50% with writes split 3:2 insert:delete so reads keep finding
// members.
func snapCommand(rng *rand.Rand, keys int) string {
	k := rng.Intn(keys)
	switch r := rng.Intn(100); {
	case r < 50:
		return fmt.Sprintf("GET %d", k)
	case r < 80:
		return fmt.Sprintf("SET %d", k)
	default:
		return fmt.Sprintf("DEL %d", k)
	}
}

// statsShards reads the server's current shard count from STATS.
func statsShards(cfg loadConfig) (int, error) {
	body, err := statsBody(cfg)
	if err != nil {
		return 0, fmt.Errorf("snapshot: STATS: %w", err)
	}
	for _, line := range body {
		if rest, ok := strings.CutPrefix(line, "shards "); ok {
			return strconv.Atoi(rest)
		}
	}
	return 0, fmt.Errorf("snapshot: STATS body has no shards row")
}

// printSnapStats relays the snapshot and topology STATS rows — saves
// taken, last-save age, snapshot size, and the live shard count.
func printSnapStats(cfg loadConfig, out io.Writer) error {
	body, err := statsBody(cfg)
	if err != nil {
		return fmt.Errorf("snapshot: STATS: %w", err)
	}
	for _, line := range body {
		if strings.HasPrefix(line, "snap ") || strings.HasPrefix(line, "shards ") {
			fmt.Fprintf(out, "  server %s\n", line)
		}
	}
	return nil
}

// statsBody round-trips one STATS command and returns the body lines.
func statsBody(cfg loadConfig) ([]string, error) {
	conn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "STATS\n"); err != nil {
		return nil, err
	}
	r := bufio.NewReader(conn)
	var body []string
	for {
		conn.SetReadDeadline(time.Now().Add(cfg.timeout))
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		if line = strings.TrimSpace(line); line == "END" {
			return body, nil
		}
		body = append(body, line)
	}
}
