// Load-generator mode: ampbench -serve-addr drives a running ampserved
// over TCP with concurrent clients and reports throughput and latency
// percentiles, closing the loop between the in-process experiments
// (E1–E14) and the served system. With -depth N each client pipelines:
// it keeps N commands in flight and the server batches them through its
// flat-combining shards (experiment E15).
package main

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"amp/internal/server"
)

// loadConfig parameterizes one load run.
type loadConfig struct {
	addr    string
	clients int
	ops     int    // per client
	depth   int    // pipeline depth: commands (or transactions) in flight
	mode    string // "mix" (all families), "map" (string keys), "txn" (MULTI/EXEC transfers)
	keys    int    // map/txn mode: size of the string key (account) space
	txnSize int    // txn mode: staged commands per transaction
	mix     string // read:write ratio like "90:10"; empty = mode's default mix
	timeout time.Duration
}

// parseMix turns "R:W" into a read percentage. The two weights need not
// sum to 100 — "9:1" and "90:10" are the same mix.
func parseMix(mix string) (int, error) {
	r, w, ok := strings.Cut(mix, ":")
	if !ok {
		return 0, fmt.Errorf("mix %q must be R:W (e.g. 90:10)", mix)
	}
	ri, err1 := strconv.Atoi(r)
	wi, err2 := strconv.Atoi(w)
	if err1 != nil || err2 != nil || ri < 0 || wi < 0 || ri+wi == 0 {
		return 0, fmt.Errorf("mix %q must be R:W with non-negative weights", mix)
	}
	return 100 * ri / (ri + wi), nil
}

// loadMix is the command cycle every client replays; it touches all six
// command families. %d is the client's key/value cursor.
var loadMix = []string{
	"SET %d", "GET %d", "DEL %d",
	"ENQ %d", "DEQ",
	"PUSH %d", "POP",
	"INC", "READ",
	"PQADD %d", "PQMIN",
}

// clientResult carries one client's measurements.
type clientResult struct {
	lat []time.Duration
	err error
}

// runLoad executes the load and prints a summary.
func runLoad(cfg loadConfig, out io.Writer) error {
	if cfg.clients <= 0 || cfg.ops <= 0 {
		return fmt.Errorf("clients (%d) and ops (%d) must be positive", cfg.clients, cfg.ops)
	}
	if cfg.timeout <= 0 {
		cfg.timeout = 10 * time.Second
	}
	switch cfg.mode {
	case "", "mix", "map", "txn":
	case "phases":
		if cfg.keys <= 0 {
			return fmt.Errorf("keys (%d) must be positive in phases mode", cfg.keys)
		}
		if cfg.mix != "" {
			return fmt.Errorf("-mix does not apply to phases mode (the schedule sets the ratios)")
		}
		return runPhases(cfg, out)
	case "snapshot":
		if cfg.keys <= 0 {
			return fmt.Errorf("keys (%d) must be positive in snapshot mode", cfg.keys)
		}
		if cfg.mix != "" {
			return fmt.Errorf("-mix does not apply to snapshot mode (the segments fix the ratio)")
		}
		return runSnapshot(cfg, out)
	default:
		return fmt.Errorf("unknown load mode %q (have mix, map, txn, phases, snapshot)", cfg.mode)
	}
	if (cfg.mode == "map" || cfg.mode == "txn") && cfg.keys <= 0 {
		return fmt.Errorf("keys (%d) must be positive in %s mode", cfg.keys, cfg.mode)
	}
	if cfg.mode == "txn" && (cfg.txnSize < 2 || cfg.txnSize > server.MaxTxnOps) {
		return fmt.Errorf("txn-size (%d) must be in 2..%d", cfg.txnSize, server.MaxTxnOps)
	}
	if cfg.mix != "" {
		if cfg.mode == "txn" {
			return fmt.Errorf("-mix does not apply to txn mode")
		}
		if _, err := parseMix(cfg.mix); err != nil {
			return err
		}
		if cfg.keys <= 0 {
			return fmt.Errorf("keys (%d) must be positive with -mix", cfg.keys)
		}
	}

	var baseline int64
	if cfg.mode == "txn" {
		b, err := sumBalances(cfg)
		if err != nil {
			return err
		}
		baseline = b
	}

	results := make([]clientResult, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < cfg.clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runClient(cfg, id)
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for id, r := range results {
		if r.err != nil {
			return fmt.Errorf("client %d: %w", id, r.err)
		}
		all = append(all, r.lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	total := len(all)
	opsPerSec := float64(total) / elapsed.Seconds()
	depth := cfg.depth
	if depth < 1 {
		depth = 1
	}
	mode := cfg.mode
	if mode == "" {
		mode = "mix"
	}
	fmt.Fprintf(out, "ampbench load: addr=%s mode=%s clients=%d ops/client=%d depth=%d",
		cfg.addr, mode, cfg.clients, cfg.ops, depth)
	if mode == "map" {
		fmt.Fprintf(out, " keys=%d", cfg.keys)
	}
	if mode == "txn" {
		fmt.Fprintf(out, " keys=%d txn-size=%d", cfg.keys, cfg.txnSize)
	}
	if cfg.mix != "" {
		fmt.Fprintf(out, " mix=%s", cfg.mix)
	}
	fmt.Fprintln(out)
	unit := "ops"
	if mode == "txn" {
		unit = "txns"
	}
	fmt.Fprintf(out, "  %d %s in %v → %.0f %s/sec\n", total, unit, elapsed.Round(time.Millisecond), opsPerSec, unit)
	fmt.Fprintf(out, "  latency p50=%v p99=%v p99.9=%v max=%v\n",
		quantile(all, 0.50), quantile(all, 0.99), quantile(all, 0.999), all[total-1])
	if mode == "txn" {
		return verifyTxnInvariant(cfg, baseline, out)
	}
	return nil
}

// sumBalances reads every acct:N key over one connection and returns the
// sum of their balances (absent accounts count 0).
func sumBalances(cfg loadConfig) (int64, error) {
	conn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return 0, fmt.Errorf("invariant check: %w", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	var sum int64
	const chunk = 256 // bounded pipelining so neither side's buffer fills
	for base := 0; base < cfg.keys; base += chunk {
		end := base + chunk
		if end > cfg.keys {
			end = cfg.keys
		}
		for a := base; a < end; a++ {
			fmt.Fprintf(w, "HGET acct:%d\n", a)
		}
		if err := w.Flush(); err != nil {
			return 0, fmt.Errorf("invariant check: %w", err)
		}
		conn.SetReadDeadline(time.Now().Add(cfg.timeout))
		for a := base; a < end; a++ {
			line, err := r.ReadString('\n')
			if err != nil {
				return 0, fmt.Errorf("invariant check acct:%d: %w", a, err)
			}
			line = strings.TrimSpace(line)
			if line == "EMPTY" {
				continue
			}
			v, err := strconv.ParseInt(line, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("invariant check acct:%d: reply %q", a, line)
			}
			sum += v
		}
	}
	return sum, nil
}

// verifyTxnInvariant reads every account after the load quiesces: the
// transfers only move value between accounts, so an atomic keyspace must
// leave sum(balances) exactly where the pre-run baseline snapshot found
// it — a torn transaction shows up as a nonzero delta. The baseline makes
// back-to-back runs against one server independent (a prior run with a
// different -keys leaves individual accounts nonzero even though its own
// sum is balanced).
func verifyTxnInvariant(cfg loadConfig, baseline int64, out io.Writer) error {
	sum, err := sumBalances(cfg)
	if err != nil {
		return err
	}

	conn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("invariant check: %w", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "TXSTATS\n")
	conn.SetReadDeadline(time.Now().Add(cfg.timeout))
	txstats, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("invariant check: TXSTATS: %w", err)
	}
	fmt.Fprintf(out, "  txstats: %s\n", strings.TrimSpace(txstats))
	delta := sum - baseline
	fmt.Fprintf(out, "  invariant: sum(balances)=%d over %d accounts (baseline %d, delta %d)\n",
		sum, cfg.keys, baseline, delta)
	if delta != 0 {
		return fmt.Errorf("txn invariant violated: sum(balances) changed by %d across the run, want 0", delta)
	}
	return nil
}

// runClient opens one connection and replays the mix with cfg.depth
// commands in flight: each round writes a window of commands in one
// flush, then reads the window's replies. Latency is recorded per
// command as the round-trip of its window — at depth 1 this is exactly
// the old per-command round-trip.
func runClient(cfg loadConfig, id int) clientResult {
	if cfg.mode == "txn" {
		return runTxnClient(cfg, id)
	}
	conn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return clientResult{err: err}
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	depth := cfg.depth
	if depth < 1 {
		depth = 1
	}

	// Map mode replays Zipf-popular string keys: a few hot keys absorb
	// most of the traffic (the realistic cache-like skew), while the tail
	// still sprays every shard. Each client seeds its own generator so
	// runs are reproducible without being identical across clients.
	var rng *rand.Rand
	var zipf *rand.Zipf
	readPct := -1
	if cfg.mode == "map" || cfg.mix != "" {
		rng = rand.New(rand.NewSource(int64(id)*104729 + 7))
	}
	if cfg.mode == "map" {
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(cfg.keys-1))
	}
	if cfg.mix != "" {
		readPct, _ = parseMix(cfg.mix) // validated by runLoad
	}

	lat := make([]time.Duration, 0, cfg.ops)
	base := 1_000_000 * (id + 1)
	window := make([]string, 0, depth)
	for sent := 0; sent < cfg.ops; sent += len(window) {
		window = window[:0]
		for i := sent; i < cfg.ops && len(window) < depth; i++ {
			var cmd string
			switch {
			case readPct >= 0:
				cmd = ratioCommand(rng, zipf, readPct, cfg.keys, base+i)
			case zipf != nil:
				cmd = mapCommand(rng, zipf, base+i)
			default:
				tmpl := loadMix[i%len(loadMix)]
				cmd = tmpl
				if strings.Contains(tmpl, "%d") {
					arg := base + i
					if strings.HasPrefix(tmpl, "PQADD") {
						// Stay inside the priority range of even tightly
						// configured bounded backends (-pq-cap >= 8).
						arg = i % 8
					}
					cmd = fmt.Sprintf(tmpl, arg)
				}
			}
			window = append(window, cmd)
		}

		begin := time.Now()
		for _, cmd := range window {
			w.WriteString(cmd)
			w.WriteByte('\n')
		}
		if err := w.Flush(); err != nil {
			return clientResult{err: fmt.Errorf("write window at %d: %w", sent, err)}
		}
		conn.SetReadDeadline(time.Now().Add(cfg.timeout))
		for _, cmd := range window {
			line, err := r.ReadString('\n')
			if err != nil {
				return clientResult{err: fmt.Errorf("read reply to %q: %w", cmd, err)}
			}
			if strings.HasPrefix(line, "ERR") {
				return clientResult{err: fmt.Errorf("%q → %s", cmd, strings.TrimSpace(line))}
			}
		}
		d := time.Since(begin)
		for range window {
			lat = append(lat, d)
		}
	}
	return clientResult{lat: lat}
}

// runTxnClient replays cfg.ops MULTI/EXEC transfer transactions, keeping
// cfg.depth whole transactions in flight per connection. Each transaction
// stages cfg.txnSize commands: balanced ±d HINCR pairs over random account
// pairs (an odd size adds a trailing HGET), so the global balance sum
// stays zero exactly when the server commits atomically. Latency is the
// round-trip of a transaction's window.
func runTxnClient(cfg loadConfig, id int) clientResult {
	conn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return clientResult{err: err}
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	depth := cfg.depth
	if depth < 1 {
		depth = 1
	}
	rng := rand.New(rand.NewSource(int64(id)*104729 + 7))

	// Per-transaction reply shape: OK, txnSize × +QUEUED, *N, N values.
	readTxn := func() error {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		if got := strings.TrimSpace(line); got != "OK" {
			return fmt.Errorf("MULTI → %q", got)
		}
		for i := 0; i < cfg.txnSize; i++ {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			if got := strings.TrimSpace(line); got != "+QUEUED" {
				return fmt.Errorf("staged %d → %q", i, got)
			}
		}
		line, err = r.ReadString('\n')
		if err != nil {
			return err
		}
		if want := "*" + strconv.Itoa(cfg.txnSize); strings.TrimSpace(line) != want {
			return fmt.Errorf("EXEC → %q, want %q", strings.TrimSpace(line), want)
		}
		for i := 0; i < cfg.txnSize; i++ {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			if strings.HasPrefix(line, "ERR") {
				return fmt.Errorf("EXEC reply %d → %s", i, strings.TrimSpace(line))
			}
		}
		return nil
	}

	lat := make([]time.Duration, 0, cfg.ops)
	for sent := 0; sent < cfg.ops; {
		batch := depth
		if rem := cfg.ops - sent; batch > rem {
			batch = rem
		}
		begin := time.Now()
		for t := 0; t < batch; t++ {
			w.WriteString("MULTI\n")
			for _, cmd := range txnCommands(rng, cfg.keys, cfg.txnSize) {
				w.WriteString(cmd)
				w.WriteByte('\n')
			}
			w.WriteString("EXEC\n")
		}
		if err := w.Flush(); err != nil {
			return clientResult{err: fmt.Errorf("write txn window at %d: %w", sent, err)}
		}
		conn.SetReadDeadline(time.Now().Add(cfg.timeout))
		for t := 0; t < batch; t++ {
			if err := readTxn(); err != nil {
				return clientResult{err: fmt.Errorf("txn %d: %w", sent+t, err)}
			}
		}
		d := time.Since(begin)
		for t := 0; t < batch; t++ {
			lat = append(lat, d)
		}
		sent += batch
	}
	return clientResult{lat: lat}
}

// txnCommands builds one transaction body: balanced transfer pairs, with
// a trailing read when size is odd.
func txnCommands(rng *rand.Rand, accounts, size int) []string {
	cmds := make([]string, 0, size)
	for len(cmds)+1 < size {
		src, dst := rng.Intn(accounts), rng.Intn(accounts)
		d := 1 + rng.Intn(9)
		cmds = append(cmds,
			fmt.Sprintf("HINCR acct:%d %d", src, d),
			fmt.Sprintf("HINCR acct:%d -%d", dst, d))
	}
	if len(cmds) < size {
		cmds = append(cmds, fmt.Sprintf("HGET acct:%d", rng.Intn(accounts)))
	}
	return cmds
}

// ratioCommand draws one command at a fixed read percentage (-mix R:W):
// in map mode (zipf != nil) HGET vs HSET/HDEL over Zipf string keys, in
// the default mode GET vs SET/DEL over a uniform [0,keys) integer space.
// Writes split 2:1 insert:delete so the structure stays populated and
// reads keep finding keys.
func ratioCommand(rng *rand.Rand, zipf *rand.Zipf, readPct, keys, v int) string {
	read := rng.Intn(100) < readPct
	if zipf != nil {
		key := zipf.Uint64()
		switch {
		case read:
			return fmt.Sprintf("HGET key:%d", key)
		case rng.Intn(3) < 2:
			return fmt.Sprintf("HSET key:%d %d", key, v)
		default:
			return fmt.Sprintf("HDEL key:%d", key)
		}
	}
	key := rng.Intn(keys)
	switch {
	case read:
		return fmt.Sprintf("GET %d", key)
	case rng.Intn(3) < 2:
		return fmt.Sprintf("SET %d", key)
	default:
		return fmt.Sprintf("DEL %d", key)
	}
}

// mapCommand draws one string-map command: a Zipf-popular key with a
// write-heavy verb mix (50% HSET, 30% HGET, 20% HDEL), value v.
func mapCommand(rng *rand.Rand, zipf *rand.Zipf, v int) string {
	key := zipf.Uint64()
	switch r := rng.Intn(10); {
	case r < 5:
		return fmt.Sprintf("HSET key:%d %d", key, v)
	case r < 8:
		return fmt.Sprintf("HGET key:%d", key)
	default:
		return fmt.Sprintf("HDEL key:%d", key)
	}
}

// quantile reads the q-quantile from a sorted sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
