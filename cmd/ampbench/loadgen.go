// Load-generator mode: ampbench -serve-addr drives a running ampserved
// over TCP with concurrent clients and reports throughput and latency
// percentiles, closing the loop between the in-process experiments
// (E1–E14) and the served system. With -depth N each client pipelines:
// it keeps N commands in flight and the server batches them through its
// flat-combining shards (experiment E15).
package main

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// loadConfig parameterizes one load run.
type loadConfig struct {
	addr    string
	clients int
	ops     int    // per client
	depth   int    // pipeline depth: commands in flight per connection
	mode    string // "mix" (all families) or "map" (string-keyed HSET/HGET/HDEL)
	keys    int    // map mode: size of the string key space
	timeout time.Duration
}

// loadMix is the command cycle every client replays; it touches all six
// command families. %d is the client's key/value cursor.
var loadMix = []string{
	"SET %d", "GET %d", "DEL %d",
	"ENQ %d", "DEQ",
	"PUSH %d", "POP",
	"INC", "READ",
	"PQADD %d", "PQMIN",
}

// clientResult carries one client's measurements.
type clientResult struct {
	lat []time.Duration
	err error
}

// runLoad executes the load and prints a summary.
func runLoad(cfg loadConfig, out io.Writer) error {
	if cfg.clients <= 0 || cfg.ops <= 0 {
		return fmt.Errorf("clients (%d) and ops (%d) must be positive", cfg.clients, cfg.ops)
	}
	if cfg.timeout <= 0 {
		cfg.timeout = 10 * time.Second
	}
	switch cfg.mode {
	case "", "mix", "map":
	default:
		return fmt.Errorf("unknown load mode %q (have mix, map)", cfg.mode)
	}
	if cfg.mode == "map" && cfg.keys <= 0 {
		return fmt.Errorf("keys (%d) must be positive in map mode", cfg.keys)
	}

	results := make([]clientResult, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < cfg.clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runClient(cfg, id)
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for id, r := range results {
		if r.err != nil {
			return fmt.Errorf("client %d: %w", id, r.err)
		}
		all = append(all, r.lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	total := len(all)
	opsPerSec := float64(total) / elapsed.Seconds()
	depth := cfg.depth
	if depth < 1 {
		depth = 1
	}
	mode := cfg.mode
	if mode == "" {
		mode = "mix"
	}
	fmt.Fprintf(out, "ampbench load: addr=%s mode=%s clients=%d ops/client=%d depth=%d",
		cfg.addr, mode, cfg.clients, cfg.ops, depth)
	if mode == "map" {
		fmt.Fprintf(out, " keys=%d", cfg.keys)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  %d ops in %v → %.0f ops/sec\n", total, elapsed.Round(time.Millisecond), opsPerSec)
	fmt.Fprintf(out, "  latency p50=%v p99=%v max=%v\n",
		quantile(all, 0.50), quantile(all, 0.99), all[total-1])
	return nil
}

// runClient opens one connection and replays the mix with cfg.depth
// commands in flight: each round writes a window of commands in one
// flush, then reads the window's replies. Latency is recorded per
// command as the round-trip of its window — at depth 1 this is exactly
// the old per-command round-trip.
func runClient(cfg loadConfig, id int) clientResult {
	conn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return clientResult{err: err}
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	depth := cfg.depth
	if depth < 1 {
		depth = 1
	}

	// Map mode replays Zipf-popular string keys: a few hot keys absorb
	// most of the traffic (the realistic cache-like skew), while the tail
	// still sprays every shard. Each client seeds its own generator so
	// runs are reproducible without being identical across clients.
	var rng *rand.Rand
	var zipf *rand.Zipf
	if cfg.mode == "map" {
		rng = rand.New(rand.NewSource(int64(id)*104729 + 7))
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(cfg.keys-1))
	}

	lat := make([]time.Duration, 0, cfg.ops)
	base := 1_000_000 * (id + 1)
	window := make([]string, 0, depth)
	for sent := 0; sent < cfg.ops; sent += len(window) {
		window = window[:0]
		for i := sent; i < cfg.ops && len(window) < depth; i++ {
			var cmd string
			if zipf != nil {
				cmd = mapCommand(rng, zipf, base+i)
			} else {
				tmpl := loadMix[i%len(loadMix)]
				cmd = tmpl
				if strings.Contains(tmpl, "%d") {
					arg := base + i
					if strings.HasPrefix(tmpl, "PQADD") {
						// Stay inside the priority range of even tightly
						// configured bounded backends (-pq-cap >= 8).
						arg = i % 8
					}
					cmd = fmt.Sprintf(tmpl, arg)
				}
			}
			window = append(window, cmd)
		}

		begin := time.Now()
		for _, cmd := range window {
			w.WriteString(cmd)
			w.WriteByte('\n')
		}
		if err := w.Flush(); err != nil {
			return clientResult{err: fmt.Errorf("write window at %d: %w", sent, err)}
		}
		conn.SetReadDeadline(time.Now().Add(cfg.timeout))
		for _, cmd := range window {
			line, err := r.ReadString('\n')
			if err != nil {
				return clientResult{err: fmt.Errorf("read reply to %q: %w", cmd, err)}
			}
			if strings.HasPrefix(line, "ERR") {
				return clientResult{err: fmt.Errorf("%q → %s", cmd, strings.TrimSpace(line))}
			}
		}
		d := time.Since(begin)
		for range window {
			lat = append(lat, d)
		}
	}
	return clientResult{lat: lat}
}

// mapCommand draws one string-map command: a Zipf-popular key with a
// write-heavy verb mix (50% HSET, 30% HGET, 20% HDEL), value v.
func mapCommand(rng *rand.Rand, zipf *rand.Zipf, v int) string {
	key := zipf.Uint64()
	switch r := rng.Intn(10); {
	case r < 5:
		return fmt.Sprintf("HSET key:%d %d", key, v)
	case r < 8:
		return fmt.Sprintf("HGET key:%d", key)
	default:
		return fmt.Sprintf("HDEL key:%d", key)
	}
}

// quantile reads the q-quantile from a sorted sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
