// Phases mode: ampbench -serve-addr ... -mode phases replays a workload
// whose character shifts mid-run — read↔write mix swings crossed with
// hot↔cold key churn — against a running ampserved. This is the probe
// for the adaptive backends (-map adaptive -txn off): a fixed backend is
// tuned for one phase and pays for it in the others, while the adaptive
// backend should morph at each boundary and track the per-phase winner.
// Connections persist across phases (morphing must not depend on
// reconnects), each phase reports its own ops/sec and latency, and the
// run ends with the whole-run rate plus the server's morph STATS rows —
// the evidence that flips actually happened (EXPERIMENTS.md E20).
package main

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// phaseSpec is one leg of the schedule: a read percentage and a key
// regime. Hot phases hammer a 16-key working set (few shards, maximal
// per-structure contention); cold phases spray the whole -keys space.
type phaseSpec struct {
	name    string
	readPct int
	hot     bool
}

// phaseSchedule swings both axes: mix (write-heavy ↔ read-heavy) and
// working set (hot ↔ cold). Each transition is a regime the adaptive
// controller should answer with a morph — to the read-optimized member
// at the write→read edges, back down the write ladder at the read→write
// edges.
var phaseSchedule = []phaseSpec{
	{name: "write-hot", readPct: 10, hot: true},
	{name: "read-hot", readPct: 95, hot: true},
	{name: "write-cold", readPct: 10, hot: false},
	{name: "read-cold", readPct: 95, hot: false},
}

// hotKeys is the hot phases' working-set size.
const hotKeys = 16

// phaseClient is one persistent connection reused across every phase.
type phaseClient struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	rng  *rand.Rand
}

// phaseResult carries one phase's aggregate measurements.
type phaseResult struct {
	name    string
	ops     int
	elapsed time.Duration
	lat     []time.Duration
}

// runPhases executes the phase schedule and prints per-phase rates, the
// whole-run rate, and the server's morph STATS rows.
func runPhases(cfg loadConfig, out io.Writer) error {
	depth := cfg.depth
	if depth < 1 {
		depth = 1
	}

	clients := make([]*phaseClient, cfg.clients)
	for id := range clients {
		conn, err := net.Dial("tcp", cfg.addr)
		if err != nil {
			return fmt.Errorf("phases: dial client %d: %w", id, err)
		}
		defer conn.Close()
		clients[id] = &phaseClient{
			conn: conn,
			r:    bufio.NewReader(conn),
			w:    bufio.NewWriter(conn),
			rng:  rand.New(rand.NewSource(int64(id)*104729 + 7)),
		}
	}

	fmt.Fprintf(out, "ampbench phases: addr=%s clients=%d ops/client/phase=%d depth=%d keys=%d\n",
		cfg.addr, cfg.clients, cfg.ops, depth, cfg.keys)

	var total int
	var wall time.Duration
	for _, phase := range phaseSchedule {
		res, err := runPhase(cfg, clients, phase, depth)
		if err != nil {
			return err
		}
		total += res.ops
		wall += res.elapsed
		sort.Slice(res.lat, func(i, j int) bool { return res.lat[i] < res.lat[j] })
		fmt.Fprintf(out, "  phase %-10s reads=%2d%% keyspace=%-5d %8d ops in %8v → %9.0f ops/sec  p50=%v p99=%v\n",
			res.name, phase.readPct, phaseKeyspace(phase, cfg.keys), res.ops,
			res.elapsed.Round(time.Millisecond), float64(res.ops)/res.elapsed.Seconds(),
			quantile(res.lat, 0.50), quantile(res.lat, 0.99))
	}
	fmt.Fprintf(out, "  whole-run: %d ops in %v → %.0f ops/sec\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds())

	return printMorphStats(cfg, out)
}

// phaseKeyspace reports the keys a phase actually draws from.
func phaseKeyspace(p phaseSpec, keys int) int {
	if p.hot {
		return hotKeys
	}
	return keys
}

// runPhase drives every client through one phase concurrently and merges
// their measurements.
func runPhase(cfg loadConfig, clients []*phaseClient, phase phaseSpec, depth int) (phaseResult, error) {
	results := make([]clientResult, len(clients))
	start := time.Now()
	var wg sync.WaitGroup
	for id, c := range clients {
		wg.Add(1)
		go func(id int, c *phaseClient) {
			defer wg.Done()
			results[id] = runPhaseClient(cfg, c, phase, depth, id)
		}(id, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := phaseResult{name: phase.name, elapsed: elapsed}
	for id, r := range results {
		if r.err != nil {
			return res, fmt.Errorf("phases: phase %s client %d: %w", phase.name, id, r.err)
		}
		res.ops += len(r.lat)
		res.lat = append(res.lat, r.lat...)
	}
	return res, nil
}

// runPhaseClient replays cfg.ops string-map commands for one phase over
// the client's persistent connection, pipelined at depth.
func runPhaseClient(cfg loadConfig, c *phaseClient, phase phaseSpec, depth, id int) clientResult {
	lat := make([]time.Duration, 0, cfg.ops)
	base := 1_000_000 * (id + 1)
	window := make([]string, 0, depth)
	for sent := 0; sent < cfg.ops; sent += len(window) {
		window = window[:0]
		for i := sent; i < cfg.ops && len(window) < depth; i++ {
			window = append(window, phaseCommand(c.rng, phase, cfg.keys, base+i))
		}
		begin := time.Now()
		for _, cmd := range window {
			c.w.WriteString(cmd)
			c.w.WriteByte('\n')
		}
		if err := c.w.Flush(); err != nil {
			return clientResult{err: fmt.Errorf("write window at %d: %w", sent, err)}
		}
		c.conn.SetReadDeadline(time.Now().Add(cfg.timeout))
		for _, cmd := range window {
			line, err := c.r.ReadString('\n')
			if err != nil {
				return clientResult{err: fmt.Errorf("read reply to %q: %w", cmd, err)}
			}
			if strings.HasPrefix(line, "ERR") {
				return clientResult{err: fmt.Errorf("%q → %s", cmd, strings.TrimSpace(line))}
			}
		}
		d := time.Since(begin)
		for range window {
			lat = append(lat, d)
		}
	}
	return clientResult{lat: lat}
}

// phaseCommand draws one HGET/HSET/HDEL at the phase's read percentage
// over the phase's key regime; writes split 2:1 insert:delete so reads
// keep finding keys.
func phaseCommand(rng *rand.Rand, phase phaseSpec, keys, v int) string {
	span := phaseKeyspace(phase, keys)
	key := rng.Intn(span)
	switch {
	case rng.Intn(100) < phase.readPct:
		return fmt.Sprintf("HGET key:%d", key)
	case rng.Intn(3) < 2:
		return fmt.Sprintf("HSET key:%d %d", key, v)
	default:
		return fmt.Sprintf("HDEL key:%d", key)
	}
}

// printMorphStats asks the server for STATS and relays the morph rows —
// live-member census, flip count, and the edges taken. On a fixed
// backend the state reads "fixed" with flips=0, which is exactly the
// comparison E20 wants visible next to the rates.
func printMorphStats(cfg loadConfig, out io.Writer) error {
	conn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("phases: STATS: %w", err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "STATS\n"); err != nil {
		return fmt.Errorf("phases: STATS: %w", err)
	}
	r := bufio.NewReader(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(cfg.timeout))
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("phases: STATS: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			return nil
		}
		if strings.HasPrefix(line, "morph ") {
			fmt.Fprintf(out, "  server %s\n", line)
		}
	}
}
