package main

import (
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E7", "E14"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("-list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperimentTiny(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-run", "E5", "-threads", "1,2", "-ops", "50"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E5", "treiber", "elimination", "best at 2 threads"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E99"}, &out); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("expected error for non-integer")
	}
	if _, err := parseInts("0"); err == nil {
		t.Fatal("expected error for non-positive thread count")
	}
}
