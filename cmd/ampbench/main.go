// Command ampbench regenerates the evaluation tables of DESIGN.md: one
// throughput table per reproduced figure (E1–E14), printed in the shape of
// the book's plots.
//
// Usage:
//
//	ampbench                 # quick sweep of every experiment
//	ampbench -full           # the full thread sweep (slow)
//	ampbench -run E1,E5      # selected experiments only
//	ampbench -list           # list experiments
//	ampbench -threads 1,2,4  # custom thread axis
//	ampbench -ops 5000       # per-thread operations per cell
//
// With -serve-addr, ampbench turns into a load generator for a running
// ampserved instance instead:
//
//	ampbench -serve-addr 127.0.0.1:7171 -clients 16 -ops 5000
//	ampbench -serve-addr 127.0.0.1:7171 -clients 16 -ops 5000 -depth 8
//	ampbench -serve-addr 127.0.0.1:7171 -mode map -keys 4096
//	ampbench -serve-addr 127.0.0.1:7171 -mode txn -clients 64 -txn-size 2
//	ampbench -serve-addr 127.0.0.1:7171 -mix 90:10 -keys 1024
//	ampbench -serve-addr 127.0.0.1:7171 -mode phases -keys 4096
//	ampbench -serve-addr 127.0.0.1:7171 -mode snapshot -clients 8 -depth 8
//
// Each client opens one TCP connection and replays a mix covering all six
// command families; the run reports ops/sec and p50/p99 latency. -depth
// sets the pipeline depth: commands kept in flight per connection (1 =
// wait for every reply, the pre-pipelining behavior). Latency is the
// round-trip of a command's window, so at depth > 1 it measures batch
// turnaround, not per-command service time. -mode map switches the
// workload to string-keyed HSET/HGET/HDEL with Zipf-popular keys drawn
// from a -keys-sized space. -mode txn replays MULTI/EXEC transfer
// transactions of -txn-size staged commands over -keys accounts; after
// the load quiesces it reads every account and fails unless the balance
// sum is exactly zero — the atomicity invariant — then prints the
// server's TXSTATS commit/abort line. -mix R:W replays a ratio-controlled
// read/write mix (GET/SET/DEL, or HGET/HSET/HDEL in -mode map) and
// reports p50/p99/p99.9 — the knob EXPERIMENTS.md E18 uses to measure
// the wait-free read bypass's tail latency. -mode phases replays a
// fixed schedule of workload regimes — write-heavy↔read-heavy mix
// swings crossed with hot↔cold key churn — over connections that
// persist across phases, reporting per-phase and whole-run ops/sec plus
// the server's morph STATS rows: the probe EXPERIMENTS.md E20 uses to
// show the adaptive backends morph at phase boundaries and track the
// per-phase best fixed backend. -mode snapshot replays a steady
// GET/SET/DEL load through five segments — quiet, SAVE landing
// mid-segment, quiet, RESHARD doubling mid-segment, quiet — and reports
// each segment's ops/sec and p50/p99 plus the control verb's own
// round-trip: the durability and elasticity stall probe EXPERIMENTS.md
// E21 uses (the server needs a writable -snapshot-dir and headroom
// under -max-shards).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"amp/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ampbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ampbench", flag.ContinueOnError)
	var (
		full      = fs.Bool("full", false, "run the full thread sweep (1..32)")
		list      = fs.Bool("list", false, "list experiments and exit")
		runIDs    = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		threads   = fs.String("threads", "", "comma-separated thread counts overriding the preset")
		ops       = fs.Int("ops", 0, "per-thread operations per cell overriding the preset")
		ablations = fs.Bool("ablations", false, "also run the design-choice ablations (A1..)")
		procs     = fs.Int("procs", 0, "GOMAXPROCS override (0 = leave as is)")
		serveAddr = fs.String("serve-addr", "", "drive a running ampserved at this address instead of the in-process experiments")
		clients   = fs.Int("clients", 8, "load mode: concurrent client connections")
		depth     = fs.Int("depth", 1, "load mode: pipeline depth (commands in flight per connection)")
		mode      = fs.String("mode", "mix", "load mode workload: mix (all families), map (Zipf string keys), txn (MULTI/EXEC transfers), phases (shifting read/write + hot/cold schedule), or snapshot (p99 before/during/after SAVE and RESHARD)")
		keys      = fs.Int("keys", 1024, "load mode: key-space (account) size for -mode map/txn/phases/snapshot")
		txnSize   = fs.Int("txn-size", 2, "load mode: staged commands per transaction for -mode txn")
		mix       = fs.String("mix", "", "load mode: read:write ratio like 90:10 (GET/SET/DEL in -mode mix, HGET/HSET/HDEL in -mode map)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *serveAddr != "" {
		opsPerClient := *ops
		if opsPerClient <= 0 {
			opsPerClient = 2000
		}
		return runLoad(loadConfig{addr: *serveAddr, clients: *clients, ops: opsPerClient,
			depth: *depth, mode: *mode, keys: *keys, txnSize: *txnSize, mix: *mix}, out)
	}

	if *list {
		for _, e := range bench.AllAndAblations() {
			fmt.Fprintf(out, "%-5s %-36s %s\n", e.ID, e.Title, e.Description)
		}
		return nil
	}

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	cfg := bench.Quick
	if *full {
		cfg = bench.Full
	}
	if *threads != "" {
		axis, err := parseInts(*threads)
		if err != nil {
			return fmt.Errorf("parse -threads: %w", err)
		}
		cfg.Threads = axis
	}
	if *ops > 0 {
		cfg.Ops = *ops
	}

	selected := bench.All
	if *ablations {
		selected = bench.AllAndAblations()
	}
	if *runIDs != "" {
		selected = nil
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	fmt.Fprintf(out, "ampbench: GOMAXPROCS=%d threads=%v ops/cell=%d\n\n",
		runtime.GOMAXPROCS(0), cfg.Threads, cfg.Ops)
	for _, e := range selected {
		table := e.Run(cfg)
		fmt.Fprintln(out, table.Format())
		fmt.Fprintf(out, "  best at %d threads: %s\n\n",
			cfg.Threads[len(cfg.Threads)-1], table.Winner())
	}
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("thread count must be positive, got %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}
